package lsl

import (
	"lsl/internal/experiments"
	"lsl/internal/lslsim"
	"lsl/internal/netsim"
	"lsl/internal/tcpsim"
)

// The simulation surface: the deterministic discrete-event substrate the
// evaluation figures run on. Downstream users can build their own
// topologies and cascades with these types, or replay the paper's
// scenarios through the experiment runners.

// SimEngine is the discrete-event clock and scheduler.
type SimEngine = netsim.Engine

// SimLink is one unidirectional link (rate, delay, queue, loss).
type SimLink = netsim.Link

// SimPath is an ordered sequence of links.
type SimPath = netsim.Path

// SimTime is simulated time in nanoseconds.
type SimTime = netsim.Time

// TCPConfig tunes a simulated TCP connection.
type TCPConfig = tcpsim.Config

// SimTCPConn is a simulated TCP Reno/SACK connection.
type SimTCPConn = tcpsim.Conn

// SessionConfig tunes a simulated LSL cascade.
type SessionConfig = lslsim.SessionConfig

// SimHop is one sublink of a simulated cascade.
type SimHop = lslsim.Hop

// SimResult summarizes one simulated transfer.
type SimResult = lslsim.Result

// Scenario is one of the paper's testbed cases.
type Scenario = experiments.Scenario

// FigureSpec identifies one of the paper's evaluation figures.
type FigureSpec = experiments.FigureSpec

// FigureData is a regenerated figure.
type FigureData = experiments.FigureData

// SweepPoint is one size-point of a bandwidth sweep.
type SweepPoint = experiments.SweepPoint

// NewSimEngine builds a deterministic engine from a seed.
func NewSimEngine(seed int64) *SimEngine { return netsim.NewEngine(seed) }

// NewSimLink attaches a link to an engine.
func NewSimLink(e *SimEngine, name string, rateBps float64, delay SimTime, queueCap int, loss float64) *SimLink {
	return netsim.NewLink(e, name, rateBps, delay, queueCap, loss)
}

// NewSimPath builds a path over links.
func NewSimPath(e *SimEngine, links ...*SimLink) *SimPath { return netsim.NewPath(e, links...) }

// DefaultTCPConfig mirrors the paper's host configuration (8 MB windows,
// delayed ACKs, SACK).
func DefaultTCPConfig() TCPConfig { return tcpsim.DefaultConfig() }

// DefaultSessionConfig mirrors the prototype's synchronous session mode.
func DefaultSessionConfig() SessionConfig { return lslsim.DefaultSessionConfig() }

// RunSimCascade executes one cascaded transfer on the simulator.
func RunSimCascade(e *SimEngine, hops []SimHop, sess SessionConfig, size int64) SimResult {
	return lslsim.RunCascade(e, hops, sess, size)
}

// RunSimDirect executes one baseline direct-TCP transfer on the simulator.
func RunSimDirect(e *SimEngine, fwd, rev *SimPath, cfg TCPConfig, size int64) SimResult {
	return lslsim.RunDirect(e, fwd, rev, cfg, size)
}

// RunSimParallel executes the PSockets-style baseline: n concurrent
// end-to-end TCP connections splitting size bytes evenly.
func RunSimParallel(e *SimEngine, fwd, rev *SimPath, cfg TCPConfig, n int, size int64) SimResult {
	return lslsim.RunParallelDirect(e, fwd, rev, cfg, n, size)
}

// Scenarios returns the paper's four testbed cases keyed by name
// (case1, case2, case3, osu).
func Scenarios() map[string]Scenario { return experiments.Scenarios() }

// AllFigures enumerates every data figure of the paper (3-29).
func AllFigures() []FigureSpec { return experiments.AllFigures() }

// FigureByID resolves "fig06", "fig6" or "6".
func FigureByID(id string) (FigureSpec, error) { return experiments.FigureByID(id) }

// RunFigure regenerates one figure (iters <= 0 uses the spec default).
func RunFigure(spec FigureSpec, iters int, seed int64) (FigureData, error) {
	return experiments.RunFigure(spec, iters, seed)
}

// HeadlineResult aggregates LSL's improvement across the evaluation (the
// abstract's "average of 40% and as much as 75%" claim).
type HeadlineResult = experiments.HeadlineResult

// RunHeadline measures the aggregate claim.
func RunHeadline(iters int, seed int64) HeadlineResult {
	return experiments.RunHeadline(iters, seed)
}

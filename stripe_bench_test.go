package lsl_test

// BenchmarkStripedThroughput measures what planner-driven striping buys
// on asymmetric paths: one logical stream over two emulated WAN paths
// (a fast one and a slow one, each shaped by internal/emu) against the
// same stream on the fast path alone. The striped variant should
// approach the sum of the path rates; the single variant is capped by
// the best path. CI's bench-regression smoke job runs both at
// -benchtime=1x and alarms on order-of-magnitude collapse (see
// BENCH_stripe.json for recorded baselines).

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"lsl"
	"lsl/internal/emu"
)

// benchStripedEnv is the shared fixture: a session target, two depots,
// and a shaped emu proxy in front of each depot (the proxy address is
// the route's first hop, so each stripe's traffic rides its own
// bottleneck).
type benchStripedEnv struct {
	routes  []lsl.Route
	payload []byte
}

const (
	benchStripedFastBps = 250e6
	benchStripedSlowBps = 150e6
	benchStripedDelay   = 500 * time.Microsecond
	benchStripedSize    = 32 << 20
)

func newBenchStripedEnv(b *testing.B, drain func(io.Reader) error) *benchStripedEnv {
	b.Helper()
	ln, err := lsl.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			sc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer sc.Close()
				_ = drain(sc)
			}()
		}
	}()

	rates := []float64{benchStripedFastBps, benchStripedSlowBps}
	routes := make([]lsl.Route, len(rates))
	for i, rate := range rates {
		dln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		d := lsl.NewDepot(lsl.DepotConfig{})
		go d.Serve(dln)
		b.Cleanup(func() { d.Close() })
		p := emu.NewProxy(dln.Addr().String(),
			emu.Shape{Delay: benchStripedDelay, RateBps: rate},
			emu.Shape{Delay: benchStripedDelay})
		pAddr, err := p.Start()
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(p.Close)
		routes[i] = lsl.Route{Via: []string{pAddr}, Target: ln.Addr().String()}
	}

	payload := make([]byte, benchStripedSize)
	rand.New(rand.NewSource(7)).Read(payload)
	return &benchStripedEnv{routes: routes, payload: payload}
}

func reportMbps(b *testing.B, bytesPerOp int64, elapsed time.Duration) {
	b.Helper()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(bytesPerOp*8*int64(b.N))/s/1e6, "Mbit/s")
	}
}

func BenchmarkStripedThroughput(b *testing.B) {
	drain := func(r io.Reader) error { _, err := io.Copy(io.Discard, r); return err }

	b.Run("single", func(b *testing.B) {
		env := newBenchStripedEnv(b, drain)
		b.SetBytes(benchStripedSize)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			_, err := lsl.Transfer(context.Background(), env.routes[0],
				bytes.NewReader(env.payload), benchStripedSize,
				lsl.WithoutTransferDigest())
			if err != nil {
				b.Fatal(err)
			}
		}
		reportMbps(b, benchStripedSize, time.Since(start))
	})

	b.Run("striped", func(b *testing.B) {
		// The striped receiver must reassemble (frames interleave across
		// paths), so its target runs a StripeReceiver per group instead
		// of a flat drain. One listener per iteration keeps groups apart.
		env := newBenchStripedEnv(b, func(r io.Reader) error { return nil })
		b.SetBytes(benchStripedSize)
		b.ResetTimer()
		var busy time.Duration
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ln, err := lsl.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			routes := make([]lsl.Route, len(env.routes))
			for j, r := range env.routes {
				routes[j] = lsl.Route{Via: r.Via, Target: ln.Addr().String()}
			}
			recvDone := make(chan error, 1)
			go func() {
				_, rerr := lsl.StripedReceive(ln, len(routes), io.Discard)
				recvDone <- rerr
			}()
			b.StartTimer()
			t0 := time.Now()
			// Small frames and an early rebalance keep the slow path from
			// hoarding work: with 1:1 starting weights the dispatcher
			// needs observed throughput quickly to skew toward the fast
			// path, and a 64 KiB frame bounds the tail a slow stripe can
			// hold hostage at the end of the stream.
			_, err = lsl.StripedTransfer(context.Background(), routes,
				bytes.NewReader(env.payload), benchStripedSize,
				lsl.WithStripeFrameSize(64<<10),
				lsl.WithStripeRebalanceBytes(512<<10))
			if err != nil {
				b.Fatal(err)
			}
			if rerr := <-recvDone; rerr != nil {
				b.Fatal(rerr)
			}
			busy += time.Since(t0)
			b.StopTimer()
			ln.Close()
			b.StartTimer()
		}
		reportMbps(b, benchStripedSize, busy)
	})
}

// BenchmarkStripedTail isolates the end-of-stream tail on a short
// transfer, where the slow path's buffered backlog dominates wall time.
// "reclaim" runs the tail-reclamation machinery (receiver acks, adaptive
// in-flight bounding, work stealing, speculative tail replication);
// "legacy" disables all of it, reproducing the pre-reclamation engine
// where the slow path drains its hoard alone while the fast path idles.
func BenchmarkStripedTail(b *testing.B) {
	const tailSize = 8 << 20
	variants := []struct {
		name string
		opts []lsl.TransferOption
	}{
		{"reclaim", nil},
		{"legacy", []lsl.TransferOption{
			lsl.WithStripeStealThreshold(-1),
			lsl.WithStripeInflightBytes(-1),
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			env := newBenchStripedEnv(b, func(r io.Reader) error { return nil })
			b.SetBytes(tailSize)
			var busy, tail time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ln, err := lsl.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				routes := make([]lsl.Route, len(env.routes))
				for j, r := range env.routes {
					routes[j] = lsl.Route{Via: r.Via, Target: ln.Addr().String()}
				}
				recvDone := make(chan error, 1)
				go func() {
					_, rerr := lsl.StripedReceive(ln, len(routes), io.Discard)
					recvDone <- rerr
				}()
				b.StartTimer()
				t0 := time.Now()
				opts := append([]lsl.TransferOption{
					lsl.WithStripeFrameSize(64 << 10),
					lsl.WithStripeRebalanceBytes(512 << 10),
				}, v.opts...)
				res, err := lsl.StripedTransfer(context.Background(), routes,
					bytes.NewReader(env.payload[:tailSize]), tailSize, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if rerr := <-recvDone; rerr != nil {
					b.Fatal(rerr)
				}
				busy += time.Since(t0)
				tail += res.Tail
				b.StopTimer()
				ln.Close()
				b.StartTimer()
			}
			reportMbps(b, tailSize, busy)
			b.ReportMetric(float64(tail.Nanoseconds())/float64(b.N), "tail_ns/op")
		})
	}
}
